//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion 0.5's API the workspace benches use
//! (`Criterion::bench_function`, `benchmark_group` + `sample_size`,
//! `Bencher::iter`, `black_box`, `criterion_group!`, `criterion_main!`)
//! with a simple wall-clock measurement loop: warm up briefly, then time
//! batches and report the median ns/iter to stdout. No statistics engine,
//! no plots — enough for `cargo bench` to produce comparable numbers and
//! for `cargo bench --no-run` to gate compilation in CI.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(200);
const WARMUP: Duration = Duration::from_millis(50);

/// Whether the binary was invoked in criterion's `--test` mode
/// (`cargo bench -- --test`): run every benchmark payload exactly once,
/// skip the measurement loops. This is how CI executes the bench harness
/// on every push without paying for full measurements.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Passed to the closure given to `bench_function`; `iter` runs and times
/// the payload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    sample_count: usize,
    test_mode: bool,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            // smoke-run the payload once; no warm-up, no sampling
            black_box(f());
            return;
        }
        // Warm-up: establish an iteration cost estimate.
        let warm_start = Instant::now();
        let mut iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters as f64;
        let budget = MEASURE.as_secs_f64() / self.sample_count as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).max(1);

        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples
                .push(t0.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
    }
}

fn report(name: &str, samples: &mut [f64]) {
    if samples.is_empty() {
        if test_mode() {
            println!("Testing {name} ... ok");
        } else {
            println!("{name:<48} (no samples)");
        }
        return;
    }
    samples.sort_by(f64::total_cmp);
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];
    println!("{name:<48} time: [{lo:>12.1} ns {median:>12.1} ns {hi:>12.1} ns]");
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 20 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_count,
            test_mode: test_mode(),
        });
        report(name, &mut samples);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_count: self.sample_count,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_count,
            test_mode: test_mode(),
        });
        report(&format!("{}/{}", self.name, name), &mut samples);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
